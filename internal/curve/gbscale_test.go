package curve

import (
	"math"
	"testing"
)

// Regression tests for scale-dependent tolerances: with GB/s-magnitude
// slopes (1e9 and up), the old absolute eps = 1e-9 comparisons failed to
// merge collinear pieces whose slopes differ only by float64 cancellation
// noise, and clamped nothing, leaving curves with spurious micro-segments.

// A curve whose middle piece has slope 2.5e9+4 over a 1e-7-wide span — pure
// cancellation noise from reconstructing a 2.5 GB/s line through computed
// points. The relative slope tolerance must merge all three pieces into
// one.
func TestNormalizeMergesGBScaleCollinear(t *testing.T) {
	c := New(0, []Segment{
		{0, 0, 2.5e9},
		{0.4, 1.0e9, 2.5e9 + 4},
		{0.4 + 1e-7, 1.0e9 + 250, 2.5e9},
	})
	if got := len(c.Segments()); got != 1 {
		t.Fatalf("GB-scale collinear pieces not merged: %d segments: %v", got, c)
	}
	if s := c.UltimateSlope(); math.Abs(s-2.5e9) > 1e-3 {
		t.Fatalf("merged slope %g, want 2.5e9", s)
	}
}

// The same curve at unit scale must NOT merge: a slope difference of 4 on a
// slope of 2.5 is a real kink, not noise.
func TestNormalizeKeepsUnitScaleKinks(t *testing.T) {
	c := New(0, []Segment{
		{0, 0, 2.5},
		{0.4, 1.0, 6.5},
		{0.6, 2.3, 2.5},
	})
	if got := len(c.Segments()); got != 3 {
		t.Fatalf("real unit-scale kinks merged away: %d segments: %v", got, c)
	}
}

// An operation chain on GB/s rate-latency and leaky-bucket curves must stay
// well-formed: residual service and deconvolution at 1e9 magnitudes hit the
// value and slope clamps, which used to be absolute (1e-9, 1e-7) and
// therefore inert at this scale.
func TestGBScaleOperationChain(t *testing.T) {
	alpha := AddBurst(Affine(1.0e9, 6.4e7), 4096) // 1 GB/s, 64 MB burst, 4 KiB packets
	beta := RateLatency(2.5e9, 0.002)             // 2.5 GB/s, 2 ms latency

	d := HDev(alpha, beta)
	if d <= 0 || math.IsInf(d, 0) || math.IsNaN(d) {
		t.Fatalf("HDev = %v", d)
	}
	v := VDev(alpha, beta)
	if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("VDev = %v", v)
	}

	cross := Affine(8.0e8, 1.0e7)
	resid, ok := ResidualService(beta, cross)
	if !ok {
		t.Fatal("residual must stay positive: 2.5 GB/s service vs 0.8 GB/s cross")
	}
	if s := resid.UltimateSlope(); math.Abs(s-(2.5e9-8.0e8)) > 1 {
		t.Fatalf("residual rate %g, want %g", s, 2.5e9-8.0e8)
	}
	for i := 0; i <= 100; i++ {
		x := 0.05 * float64(i) / 100
		if resid.Value(x) < 0 {
			t.Fatalf("residual negative at %g: %g", x, resid.Value(x))
		}
	}

	out, ok := Deconvolve(alpha, resid)
	if !ok {
		t.Fatal("deconvolution must be bounded")
	}
	// The output envelope keeps the arrival's long-run rate and is
	// monotone despite GB-scale slope arithmetic.
	if s := out.UltimateSlope(); math.Abs(s-1.0e9) > 1 {
		t.Fatalf("output rate %g, want 1e9", s)
	}
	prev := out.AtZero()
	for i := 0; i <= 200; i++ {
		x := 0.1 * float64(i) / 200
		v := out.Value(x)
		if v < prev-absEps(prev) {
			t.Fatalf("output not monotone at %g: %g < %g", x, v, prev)
		}
		prev = v
	}
}

// Min/Max on GB/s curves via both kernels: the merge kernel's tie tolerance
// is value-relative, so coincident GB-scale curves collapse instead of
// producing crossing chatter.
func TestGBScaleKernelAgreement(t *testing.T) {
	a := Min(Affine(2.5e9, 1.0e8), Affine(1.0e9, 6.4e8))
	b := Min(Affine(2.5e9+0.5, 1.0e8), Affine(1.2e9, 5.0e8)) // 0.5 B/s apart: noise
	for _, op := range []binOp{binMin, binMax, binAdd} {
		merged := combineMerge(a, b, op)
		sorted := combineSorted(a, b, op)
		sameOnGrid(t, merged, sorted, 3, "GB-scale kernels")
	}
}
