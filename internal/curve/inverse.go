package curve

import "math"

// Inverse returns the lower pseudo-inverse of the curve as a curve in its
// own right:
//
//	f⁻¹(y) = inf { t >= 0 : f(t) >= y },
//
// i.e. the max-plus-algebra view of the same system: where f maps time to
// data, f⁻¹ maps data volume to the earliest time it is available. Flat
// segments of f become jumps of f⁻¹ and jumps of f become flat segments.
// For a rate-latency service curve, the inverse is the delivery-time
// function T + v/R.
//
// The domain of the result is [0, sup f); if f is bounded (ultimate slope
// zero), the inverse is truncated at the bound: values y above sup f would
// be +inf and are reported by the final segment's slope being 0 — callers
// should check Bounded() of the original curve. ok is false for the
// identically-zero curve (whose inverse is 0 at 0 and +inf elsewhere).
func (c Curve) Inverse() (inv Curve, ok bool) {
	segs := c.Segments()
	out := make([]Segment, 0, len(segs)+1)
	// Walk the graph of f, emitting the reflected breakpoints. Current
	// position on the y-axis of f (x-axis of the inverse):
	y := 0.0
	emit := func(yStart, tVal, slope float64) {
		if len(out) > 0 {
			p := &out[len(out)-1]
			if math.Abs(p.X-yStart) <= absEps(yStart) {
				// Same start: keep the later (tighter) definition.
				*p = Segment{yStart, tVal, slope}
				return
			}
		}
		out = append(out, Segment{yStart, tVal, slope})
	}

	// Origin: f(0)=y0, f(0+)=Burst. Volumes up to the burst are available
	// at time 0 (inf over t>0 approaching 0).
	if c.Burst() > 0 {
		emit(0, 0, 0)
		y = c.Burst()
	}
	for i, s := range segs {
		end := math.Inf(1)
		if i+1 < len(segs) {
			end = segs[i+1].X
		}
		// Jump at the start of this segment (for i>0): volumes in
		// (prevEnd, s.Y) become available exactly at s.X -> flat piece.
		if s.Y > y+absEps(y) {
			emit(y, s.X, 0)
			y = s.Y
		}
		if s.Slope > 0 {
			// Increasing piece: inverse slope 1/slope starting at (y, x0)
			// where x0 is the time f reaches y on this segment.
			x0 := s.X + (y-s.Y)/s.Slope
			if x0 < s.X {
				x0 = s.X
			}
			emit(y, x0, 1/s.Slope)
			if !math.IsInf(end, 1) {
				y = s.Y + s.Slope*(end-s.X)
			} else {
				y = math.Inf(1)
			}
		}
		// Flat piece contributes nothing (the inverse jumps over it, which
		// the next emit's time value realizes).
	}
	if len(out) == 0 {
		// f is identically zero: no volume is ever delivered.
		return Zero(), false
	}
	if out[0].X > 0 {
		// f(0+) == 0 and first availability is later: prepend the zero
		// segment so the inverse starts at volume 0.
		out = append([]Segment{{0, out[0].Y, 0}}, out...)
	}
	return New(0, out), true
}

// Bounded reports whether the curve is bounded (ultimate slope zero).
func (c Curve) Bounded() bool { return c.UltimateSlope() == 0 }
