package curve

import (
	"math"
)

// Deconvolve computes the min-plus deconvolution
//
//	(f ⊘ g)(t) = sup_{u >= 0} [ f(t+u) - g(u) ],
//
// exactly, for arbitrary piecewise-linear f and g. In network calculus this
// yields the output arrival bound alpha* = alpha ⊘ beta of a flow
// constrained by alpha crossing a server with service curve beta.
//
// The supremum is finite for every t iff f's long-run rate does not exceed
// g's; otherwise ok is false and the curve result is meaningless.
//
// The algorithm exploits that, for fixed t, u -> f(t+u) - g(u) is piecewise
// linear with breakpoints where u hits a breakpoint of g or t+u hits a
// breakpoint of f; the supremum over u is therefore attained at one of
// finitely many candidate families, each of which is a wide-sense-increasing
// piecewise-linear function of t:
//
//   - u pinned at a breakpoint u_j of g (using g's left limit, since g may
//     jump upward there): t -> f(t+u_j) - g(u_j⁻), a left-shift of f;
//   - t+u pinned at a breakpoint x_i of f: t -> f(x_i) - g(x_i - t) for
//     t <= x_i, extended constant afterwards;
//   - u -> ∞ when the ultimate slopes are equal: the affine asymptote.
//
// The result is the pointwise maximum of all candidates.
func Deconvolve(f, g Curve) (res Curve, ok bool) {
	return memoBinaryOK(opDeconv, f, g, func() (Curve, bool) { return deconvolve(f, g) })
}

func deconvolve(f, g Curve) (res Curve, ok bool) {
	fr, fo := f.UltimateAffine()
	gr, gOff := g.UltimateAffine()
	if fr > gr+absEps(gr) {
		return Zero(), false
	}

	var candidates []Curve

	// Family A: u pinned at breakpoints of g (g's left limit minimizes g).
	for _, u := range g.Breakpoints() {
		gLow := g.AtZero()
		if u > 0 {
			gLow = g.ValueLeft(u)
		}
		candidates = append(candidates, shiftDown(ShiftLeft(f, u), gLow))
	}
	// u = 0 with the exact point value g(0) is included above (gLow(0)=y0).

	// Family B: t+u pinned at breakpoints of f.
	for _, x := range f.Breakpoints() {
		if x == 0 {
			continue // covered by family A at u=0 and t=0 evaluation
		}
		candidates = append(candidates, pinnedCandidate(f, g, x))
	}

	// Family C: asymptote when ultimate rates coincide.
	if math.Abs(fr-gr) <= absEps(gr) {
		off := fo - gOff
		candidates = append(candidates, newOwned(off, []Segment{{0, off, fr}}))
	}

	// Fold with the raw kernel rather than the memoized Max: the
	// intermediates are unique to this call and would only churn the memo.
	res = candidates[0]
	for _, c := range candidates[1:] {
		res = combine(res, c, binMax)
	}
	return res, true
}

// shiftDown subtracts a constant from every value of c (including at the
// origin), preserving monotonicity.
func shiftDown(c Curve, d float64) Curve {
	segs := c.Segments()
	for i := range segs {
		segs[i].Y -= d
	}
	return newOwned(c.AtZero()-d, segs)
}

// pinnedCandidate builds t -> f(x) - g(x - t) on [0, x], extended with the
// constant f(x) - g(0) for t >= x. f(x) uses the (right-continuous) upper
// value; g uses left limits, since the supremum benefits from both.
func pinnedCandidate(f, g Curve, x float64) Curve {
	fx := f.Value(x)
	// Walk g's breakpoints u in (0, x] from largest to smallest; they map to
	// t = x - u from smallest to largest. On each interval the slope of the
	// candidate equals the slope of the g segment being traversed.
	type bp struct{ t, y, slope float64 }
	var pts []bp
	// Start at t = 0: candidate value f(x) - g(x⁻).
	pts = append(pts, bp{0, fx - g.ValueLeft(x), 0})
	gsegs := g.Segments()
	for i := len(gsegs) - 1; i >= 0; i-- {
		u := gsegs[i].X
		if u >= x || u <= 0 {
			continue
		}
		pts = append(pts, bp{x - u, fx - g.ValueLeft(u), 0})
	}
	pts = append(pts, bp{x, fx - g.AtZero(), 0})

	segs := make([]Segment, 0, len(pts))
	for i := range pts {
		var slope float64
		if i+1 < len(pts) {
			dt := pts[i+1].t - pts[i].t
			// Within the interval the candidate follows g linearly; the
			// value just left of the next breakpoint is fx - gRight(u_next).
			uNext := x - pts[i+1].t
			endVal := fx - g.ValueRight(uNext)
			if dt > 0 {
				slope = clampSlope((endVal-pts[i].y)/dt, fx, dt)
			}
		}
		segs = append(segs, Segment{pts[i].t, pts[i].y, slope})
	}
	return newOwned(pts[0].y, segs)
}

// DeconvolveSampled evaluates (f ⊘ g) numerically: the supremum over u is
// taken on an n-point grid over [0, uMax]. It is used to cross-validate the
// exact algorithm in tests; the exact Deconvolve should be preferred.
func DeconvolveSampled(f, g Curve, horizon, uMax float64, n int) (xs, ys []float64) {
	if n < 2 {
		n = 2
	}
	xs = make([]float64, n+1)
	ys = make([]float64, n+1)
	tStep := horizon / float64(n)
	uStep := uMax / float64(n)
	for i := 0; i <= n; i++ {
		t := float64(i) * tStep
		best := f.Value(t) - g.AtZero() // u = 0
		for j := 1; j <= n; j++ {
			u := float64(j) * uStep
			if v := f.Value(t+u) - g.ValueLeft(u); v > best {
				best = v
			}
			if v := f.Value(t+u) - g.Value(u); v > best {
				best = v
			}
		}
		xs[i] = t
		ys[i] = best
	}
	return xs, ys
}
