package curve

import (
	"sync/atomic"
	"time"
)

// Per-operation timing instrumentation.
//
// The memo layer already knows every operator entry point, so it doubles as
// the timing seam: when an OpTimer is attached, each *computed* (memo-miss
// or memo-disabled) operation reports its wall-clock cost under the
// operator's name. Memo hits are not timed — they are two map operations —
// so the histogram measures real kernel work, matching Nancy's per-operation
// cost accounting (arXiv:2205.11449).
//
// Detached (the default) the hot path pays a single atomic pointer load per
// computed operation and nothing per hit.

// OpTimer receives the wall-clock duration of one computed curve operation.
type OpTimer func(op string, seconds float64)

var opTimer atomic.Pointer[OpTimer]

// SetOpTimer attaches fn as the process-wide operation timer; nil detaches.
// The previous timer is returned so callers can restore it.
func SetOpTimer(fn OpTimer) (prev OpTimer) {
	var old *OpTimer
	if fn == nil {
		old = opTimer.Swap(nil)
	} else {
		old = opTimer.Swap(&fn)
	}
	if old == nil {
		return nil
	}
	return *old
}

// opNames maps memo op tags to their exported metric label values.
var opNames = [...]string{
	opMin:          "min",
	opMax:          "max",
	opAdd:          "add",
	opConv:         "convolve",
	opDeconv:       "deconvolve",
	opResidual:     "residual",
	opHDev:         "hdev",
	opVDev:         "vdev",
	opShiftRight:   "shift_right",
	opAddBurst:     "add_burst",
	opSubConst:     "sub_const",
	opConcaveHull:  "concave_hull",
	opFIFOResidual: "fifo_residual",
}

// OpNames returns every metric label value a computed-operation timer can
// report, so metric registries can pre-register the full timing family
// eagerly instead of waiting for the first memo miss of each operator.
func OpNames() []string {
	out := make([]string, 0, len(opNames))
	for _, n := range opNames {
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

func (op memoOp) name() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "unknown"
}

// timedCurve runs compute, reporting its duration when a timer is attached.
func timedCurve(op memoOp, compute func() Curve) Curve {
	t := opTimer.Load()
	if t == nil {
		return compute()
	}
	start := time.Now()
	c := compute()
	(*t)(op.name(), time.Since(start).Seconds())
	return c
}

// timedCurveOK is timedCurve for (Curve, bool)-valued operations.
func timedCurveOK(op memoOp, compute func() (Curve, bool)) (Curve, bool) {
	t := opTimer.Load()
	if t == nil {
		return compute()
	}
	start := time.Now()
	c, ok := compute()
	(*t)(op.name(), time.Since(start).Seconds())
	return c, ok
}

// timedScalar is timedCurve for float64-valued operations (HDev, VDev).
func timedScalar(op memoOp, compute func() float64) float64 {
	t := opTimer.Load()
	if t == nil {
		return compute()
	}
	start := time.Now()
	s := compute()
	(*t)(op.name(), time.Since(start).Seconds())
	return s
}
