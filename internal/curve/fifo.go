package curve

import (
	"math"
	"sort"
)

// FIFOResidual returns a member of the FIFO left-over service family for a
// flow of interest sharing a FIFO server (service curve beta) with cross
// traffic bounded by cross:
//
//	beta_theta(t) = [beta(t) - cross(t-theta)]⁺ · 1{t > theta},  theta >= 0.
//
// Every theta yields a valid service curve (Le Boudec & Thiran, Prop.
// 6.2.1); different members are mutually incomparable — a larger theta
// subtracts less late but guarantees nothing early — so a bound must
// commit to one theta, and tightening is a search over the family.
//
// What is returned is the non-decreasing lower envelope of the formula
// above: the raw expression can dip where the shifted cross is momentarily
// steeper than beta, and the envelope (pointwise <= the theorem curve) is
// still a valid service curve while satisfying this package's wide-sense
// increasing invariant. The envelope form is also what makes the ladder's
// dominance guarantee structural: for theta <= FIFOThetaMax,
// beta(t)-cross(t-theta) >= beta(t)-cross(t) everywhere, so the envelope
// dominates the blind residual pointwise.
//
// A non-concave cross is replaced by its ConcaveHull, as in
// ResidualService. ok is false when the cross traffic's long-run rate is
// at least beta's (the flow of interest can starve regardless of theta).
func FIFOResidual(beta, cross Curve, theta float64) (res Curve, ok bool) {
	if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 1) {
		panic("curve: FIFOResidual with invalid theta")
	}
	if theta == 0 {
		// beta_0 is the blind residual (the indicator only excludes t = 0,
		// where the residual is zero anyway).
		return ResidualService(beta, cross)
	}
	if !beta.IsConvex() {
		return Zero(), false
	}
	if !cross.IsConcave() {
		cross = ConcaveHull(cross)
	}
	if cross.Equal(Zero()) {
		// No cross traffic: the full service survives for any theta.
		return beta, true
	}
	br, _ := beta.UltimateAffine()
	cr, _ := cross.UltimateAffine()
	if br <= cr+absEps(cr) {
		return Zero(), false
	}
	shifted := ShiftRight(cross, theta)
	// theta is recoverable from shifted (cross is non-zero, so the shift is
	// injective), which makes (beta, shifted) a sound memo key even though
	// the closure captures theta directly.
	return memoBinaryOK(opFIFOResidual, beta, shifted, func() (Curve, bool) {
		return fifoResidual(beta, shifted, theta), true
	})
}

// fifoResidual builds the non-decreasing lower envelope of
// [beta(t) - shifted(t)]⁺·1{t>theta} for theta > 0 and a starvation-free,
// convex-minus-shifted-concave difference.
func fifoResidual(beta, shifted Curve, theta float64) Curve {
	// On (theta, ∞) the difference diff = beta - shifted is convex
	// (beta convex, shifted concave there), so its minimum sits on a
	// vertex of the merged breakpoint set and the set {diff <= 0} is an
	// interval.
	xs := mergeBreakpoints(beta.Breakpoints(), shifted.Breakpoints())
	i0 := sort.SearchFloat64s(xs, theta-absEps(theta))
	xs = append([]float64{theta}, xs[i0:]...)
	if len(xs) > 1 && xs[1]-xs[0] <= absEps(theta) {
		xs = xs[1:]
		xs[0] = theta
	}
	diffAt := func(t float64) float64 { return beta.Value(t) - shifted.Value(t) }
	slopeAfter := func(t float64) float64 {
		after := math.Nextafter(t, math.Inf(1))
		return math.Max(0, beta.segAt(after).Slope-shifted.segAt(after).Slope)
	}
	v := make([]float64, len(xs))
	m := 0
	for i, x := range xs {
		v[i] = diffAt(x)
		if v[i] < v[m] {
			m = i
		}
	}

	segs := []Segment{{0, 0, 0}}
	if v[m] > 0 {
		// Positive everywhere past theta. The envelope jumps to the future
		// minimum v[m] at theta, stays flat until the minimizing vertex,
		// then follows diff up its increasing branch.
		if m > 0 {
			segs = append(segs, Segment{theta, v[m], 0})
		}
		for i := m; i < len(xs); i++ {
			segs = append(segs, Segment{xs[i], v[i], slopeAfter(xs[i])})
		}
		return newOwned(0, segs)
	}

	// Locate the single crossing out of {diff <= 0} and emit the positive
	// increasing tail, zero before it.
	k := m
	for k+1 < len(xs) && v[k+1] <= 0 {
		k++
	}
	var t0 float64
	if k+1 < len(xs) {
		s := (v[k+1] - v[k]) / (xs[k+1] - xs[k])
		t0 = xs[k] - v[k]/s
	} else {
		brr, _ := beta.UltimateAffine()
		crr, _ := shifted.UltimateAffine()
		t0 = xs[k] - v[k]/(brr-crr)
	}
	segs = append(segs, Segment{t0, math.Max(0, diffAt(t0)), slopeAfter(t0)})
	for i := range xs {
		if xs[i] > t0 {
			segs = append(segs, Segment{xs[i], v[i], slopeAfter(xs[i])})
		}
	}
	return newOwned(0, segs)
}

// FIFOThetaMax returns the largest theta for which FIFOResidual is
// guaranteed to dominate the blind-multiplexing residual pointwise: the
// blind residual's latency t0. For theta <= t0 the FIFO member is zero
// only where the blind residual is also zero, and past t0 it subtracts a
// cross value from an earlier (hence smaller) point. ok is false when the
// flow can starve (no residual exists at any theta).
func FIFOThetaMax(beta, cross Curve) (float64, bool) {
	blind, ok := ResidualService(beta, cross)
	if !ok {
		return 0, false
	}
	return blind.Latency(), true
}

// maxThetaCandidates bounds the per-node theta grid; breakpoint-difference
// candidates beyond it are thinned evenly (the endpoints always survive).
const maxThetaCandidates = 16

// FIFOThetaCandidates returns the dominance-safe theta search grid for the
// pair (beta, cross), sorted ascending: 0 (the blind residual), the
// pairwise differences of beta and cross breakpoints that fall inside
// (0, thetaMax) — the only points where the piecewise-linear structure of
// beta_theta can change — and thetaMax itself. Returns nil when the flow
// starves.
func FIFOThetaCandidates(beta, cross Curve) []float64 {
	tmax, ok := FIFOThetaMax(beta, cross)
	if !ok {
		return nil
	}
	if tmax <= 0 {
		return []float64{0}
	}
	if !cross.IsConcave() {
		cross = ConcaveHull(cross)
	}
	set := []float64{0, tmax}
	for _, bb := range beta.Breakpoints() {
		for _, bc := range cross.Breakpoints() {
			if d := bb - bc; d > absEps(tmax) && d < tmax-absEps(tmax) {
				set = append(set, d)
			}
		}
	}
	sort.Float64s(set)
	out := set[:0]
	for _, x := range set {
		if len(out) == 0 || x-out[len(out)-1] > absEps(x) {
			out = append(out, x)
		}
	}
	if len(out) > maxThetaCandidates {
		thinned := make([]float64, 0, maxThetaCandidates)
		for i := 0; i < maxThetaCandidates; i++ {
			thinned = append(thinned, out[i*(len(out)-1)/(maxThetaCandidates-1)])
		}
		out = thinned
	}
	return out
}

// FIFOThetaInsert inserts th into the sorted theta grid g, keeping it sorted
// and free of near-equal duplicates: when th is within absEps of an existing
// candidate the grid is returned unchanged. A duplicate theta would not be
// unsound — every member of the family is a valid residual — but in the
// joint tight-rung enumeration it silently multiplies the combo budget by a
// redundant slice of the lattice, so every grid insert routes through here.
func FIFOThetaInsert(g []float64, th float64) []float64 {
	i := sort.SearchFloat64s(g, th)
	if i < len(g) && g[i]-th <= absEps(th) {
		return g
	}
	if i > 0 && th-g[i-1] <= absEps(th) {
		return g
	}
	g = append(g, 0)
	copy(g[i+1:], g[i:])
	g[i] = th
	return g
}

// FIFOResidualBest searches the dominance-safe theta grid for the family
// member minimizing the delay bound HDev(alpha, beta_theta) against the
// flow's arrival envelope alpha. Ties keep the smaller theta (theta = 0 is
// always a candidate, so the result never does worse than the blind
// residual). ok is false when the flow can starve.
func FIFOResidualBest(alpha, beta, cross Curve) (res Curve, theta float64, ok bool) {
	cands := FIFOThetaCandidates(beta, cross)
	if n := len(cands); n > 0 {
		// Arrival-aware candidate: the theta where the service available
		// right after theta just covers the cross and arrival bursts,
		// beta(theta) = b_cross + b_alpha. For a rate-latency beta and
		// affine envelopes this is T + (b_c + b_a)/R — the exact aggregate
		// FIFO delay bound — and it is where the delay-vs-theta curve
		// bottoms out between the structural breakpoints.
		tmax := cands[n-1]
		if th := beta.InverseLower(cross.Burst() + alpha.Burst()); th > 0 && th < tmax && !math.IsInf(th, 1) {
			cands = FIFOThetaInsert(cands, th)
		}
	}
	bestD := math.Inf(1)
	for _, th := range cands {
		r, rok := FIFOResidual(beta, cross, th)
		if !rok {
			continue
		}
		if d := HDev(alpha, r); !ok || d < bestD-absEps(bestD) {
			bestD, res, theta, ok = d, r, th, true
		}
	}
	return res, theta, ok
}
