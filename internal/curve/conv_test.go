package curve

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvolveRateLatencyConcatenation(t *testing.T) {
	// Classic: beta_{R1,T1} conv beta_{R2,T2} = beta_{min(R1,R2), T1+T2}.
	b1 := RateLatency(4, 3)
	b2 := RateLatency(7, 2)
	got := Convolve(b1, b2)
	want := RateLatency(4, 5)
	if !got.Equal(want) {
		t.Errorf("concatenation = %v, want %v", got, want)
	}
}

func TestConvolveConcaveIsMin(t *testing.T) {
	a1 := Affine(1, 10)
	a2 := Affine(3, 2)
	got := Convolve(a1, a2)
	want := Min(a1, a2)
	if !got.Equal(want) {
		t.Errorf("concave conv = %v, want %v", got, want)
	}
}

func TestConvolveWithZero(t *testing.T) {
	a := Affine(2, 5)
	got := Convolve(a, Zero())
	if !got.Equal(Zero()) {
		t.Errorf("conv with zero = %v", got)
	}
}

func TestConvolveCommutes(t *testing.T) {
	b1 := RateLatency(4, 3)
	b2 := RateLatency(7, 2)
	if !Convolve(b1, b2).Equal(Convolve(b2, b1)) {
		t.Error("convolution must commute")
	}
	a1 := Affine(1, 10)
	a2 := Affine(3, 2)
	if !Convolve(a1, a2).Equal(Convolve(a2, a1)) {
		t.Error("concave convolution must commute")
	}
}

func TestConvolveConvexThreeSegments(t *testing.T) {
	// Convex curve: 0 until 1, slope 2 until 3, then slope 5.
	c1 := New(0, []Segment{{0, 0, 0}, {1, 0, 2}, {3, 4, 5}})
	c2 := RateLatency(3, 2)
	got := Convolve(c1, c2)
	// Slope-merge: latencies add (slope-0 pieces of length 1 and 2), then
	// slope 2 for length 2 (from c1), then slope 3 forever (min ultimate).
	want := New(0, []Segment{{0, 0, 0}, {3, 0, 2}, {5, 4, 3}})
	if !got.Equal(want) {
		t.Errorf("convex conv = %v, want %v", got, want)
	}
	// Cross-check against brute force at sample points.
	checkConvBrute(t, c1, c2, got, 12)
}

// checkConvBrute verifies got(t) ~= inf_s f(s)+g(t-s) on a fine grid. The
// grid infimum over-estimates the true infimum by at most one grid step of
// slope, so the check is asymmetric: got must never exceed the grid value,
// and must be within grid slack below it.
func checkConvBrute(t *testing.T, f, g, got Curve, horizon float64) {
	t.Helper()
	const n = 400
	slack := (f.UltimateSlope() + g.UltimateSlope()) * horizon / n * 2
	for i := 0; i <= n; i++ {
		x := horizon * float64(i) / float64(n)
		best := math.Inf(1)
		for j := 0; j <= n; j++ {
			s := x * float64(j) / float64(n)
			if v := f.Value(s) + g.Value(x-s); v < best {
				best = v
			}
		}
		if v := f.AtZero() + g.Value(x); v < best {
			best = v
		}
		if v := f.Value(x) + g.AtZero(); v < best {
			best = v
		}
		gv := got.Value(x)
		if gv > best+1e-6*(1+math.Abs(best)) {
			t.Fatalf("conv above brute at t=%g: exact=%g brute=%g", x, gv, best)
		}
		if gv < best-slack-1e-9 {
			t.Fatalf("conv far below brute at t=%g: exact=%g brute=%g", x, gv, best)
		}
	}
}

// Property: exact convex convolution matches brute force for random
// rate-latency pairs.
func TestConvolveConvexMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 25; k++ {
		b1 := RateLatency(0.5+5*rng.Float64(), 4*rng.Float64())
		b2 := RateLatency(0.5+5*rng.Float64(), 4*rng.Float64())
		got := Convolve(b1, b2)
		checkConvBrute(t, b1, b2, got, 15)
	}
}

// Property: exact concave convolution matches brute force for random
// leaky-bucket pairs.
func TestConvolveConcaveMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for k := 0; k < 25; k++ {
		a1 := Affine(0.5+5*rng.Float64(), 10*rng.Float64())
		a2 := Affine(0.5+5*rng.Float64(), 10*rng.Float64())
		got := Convolve(a1, a2)
		checkConvBrute(t, a1, a2, got, 15)
	}
}

func TestConvolveMixedFallsBackToSampled(t *testing.T) {
	// Concave (with burst) conv convex (rate-latency): no closed form in our
	// fast paths; sampled result must still match brute force at grid points.
	a := Affine(2, 6)
	b := RateLatency(3, 2)
	got := Convolve(a, b)
	checkConvBrute(t, a, b, got, 10)
	// Hand values: since a(0)=0, the split s=0 caps the convolution at
	// b(t); for t in [2,8] the infimum is exactly b(t) = 3(t-2).
	approx(t, got.Value(1), 0, 1e-3, "inside latency")
	approx(t, got.Value(4), 6, 0.05, "service-limited region")
}

func TestConvolveSampledMonotone(t *testing.T) {
	a := Affine(2, 6)
	b := RateLatency(3, 2)
	c := ConvolveSampled(a, b, 20, 200)
	prev := -1.0
	for i := 0; i <= 200; i++ {
		x := 20 * float64(i) / 200
		v := c.Value(x)
		if v < prev-1e-9 {
			t.Fatalf("sampled convolution not monotone at %g", x)
		}
		prev = v
	}
}

func TestConvolveAll(t *testing.T) {
	chain := []Curve{RateLatency(4, 1), RateLatency(9, 2), RateLatency(6, 0.5)}
	got := ConvolveAll(chain)
	want := RateLatency(4, 3.5)
	if !got.Equal(want) {
		t.Errorf("chain = %v, want %v", got, want)
	}
}

func TestConvolveAllPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ConvolveAll(nil)
}

func TestMaxPlusConvolveConvex(t *testing.T) {
	b1 := RateLatency(2, 1)
	b2 := RateLatency(5, 3)
	got := MaxPlusConvolve(b1, b2)
	want := Max(b1, b2)
	if !got.Equal(want) {
		t.Errorf("max-plus conv = %v, want %v", got, want)
	}
}

func TestMaxPlusConvolveBrute(t *testing.T) {
	f := Affine(2, 3) // not convex -> sampled path
	g := RateLatency(4, 1)
	got := MaxPlusConvolve(f, g)
	const n = 200
	horizon := 8.0
	for i := 0; i <= n; i++ {
		x := horizon * float64(i) / float64(n)
		best := math.Inf(-1)
		for j := 0; j <= n; j++ {
			s := x * float64(j) / float64(n)
			if v := f.Value(s) + g.Value(x-s); v > best {
				best = v
			}
		}
		gv := got.Value(x)
		if gv < best-0.15 { // sampled curve may be slightly conservative
			t.Fatalf("max-plus too low at %g: %g < %g", x, gv, best)
		}
	}
}

// Property-based: convolution is dominated by both operands shifted
// appropriately — in particular (f conv g)(t) <= f(t) + g(0+) and
// (f conv g) is monotone.
func TestConvolveUpperBoundProperty(t *testing.T) {
	f := func(r1, b1, r2, t2 uint8) bool {
		a := Affine(float64(r1%10)+0.5, float64(b1%20))
		b := RateLatency(float64(r2%10)+0.5, float64(t2%5))
		c := Convolve(a, b)
		for _, x := range []float64{0, 0.5, 1, 2, 5, 10, 50} {
			if c.Value(x) > a.Value(x)+b.Burst()+1e-6 {
				return false
			}
			if c.Value(x) > b.Value(x)+a.AtZero()+a.Burst()+1e-6 {
				// conv <= g(t) + f(0+) as s->0+ splits
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The mixed concave ⊗ rate-latency closed form must agree with brute force.
func TestConvolveConcaveRateLatencyClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for k := 0; k < 25; k++ {
		a := Min(Affine(0.5+4*rng.Float64(), 10*rng.Float64()), Affine(0.2+rng.Float64(), 3+10*rng.Float64()))
		b := RateLatency(0.5+5*rng.Float64(), 4*rng.Float64())
		got := Convolve(a, b)
		checkConvBrute(t, a, b, got, 15)
		// Symmetric order.
		got2 := Convolve(b, a)
		if !got.Equal(got2) {
			t.Fatal("mixed convolution must commute")
		}
	}
}

func TestAsRateLatencyDetection(t *testing.T) {
	if _, _, ok := asRateLatency(RateLatency(4, 3)); !ok {
		t.Error("rate-latency not detected")
	}
	if r, tt, ok := asRateLatency(Line(5)); !ok || r != 5 || tt != 0 {
		t.Error("line not detected as zero-latency rate-latency")
	}
	if _, _, ok := asRateLatency(Affine(1, 2)); ok {
		t.Error("leaky bucket misdetected")
	}
	multi := New(0, []Segment{{0, 0, 0}, {1, 0, 2}, {3, 4, 5}})
	if _, _, ok := asRateLatency(multi); ok {
		t.Error("multi-slope convex misdetected")
	}
}
