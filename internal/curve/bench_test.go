package curve

import (
	"fmt"
	"testing"
)

// Micro-benchmarks for the merge kernels and memo across curve sizes. Run
// with the memo disabled to time the kernels themselves; BenchmarkMemoHit
// times the cached path.

// benchConcave builds an n-segment concave curve (decreasing slopes).
func benchConcave(n int) Curve {
	segs := make([]Segment, n)
	x, y := 0.0, 10.0
	for i := 0; i < n; i++ {
		slope := 1000.0 / float64(i+1)
		segs[i] = Segment{x, y, slope}
		x += 1
		y += slope
	}
	return New(0, segs)
}

// benchConvex builds an n-segment convex curve (increasing slopes).
func benchConvex(n int) Curve {
	segs := make([]Segment, n)
	x, y := 0.0, 0.0
	for i := 0; i < n; i++ {
		slope := float64(i + 1)
		segs[i] = Segment{x, y, slope}
		x += 1
		y += slope
	}
	return New(0, segs)
}

var benchSizes = []int{2, 10, 100, 1000}

func BenchmarkMin(b *testing.B) {
	defer EnableMemo(true)
	EnableMemo(false)
	for _, n := range benchSizes {
		f := benchConcave(n)
		g := ShiftRight(benchConcave(n), 0.5)
		b.Run(fmt.Sprintf("segs-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Min(f, g)
			}
		})
	}
}

func BenchmarkMinSortedReference(b *testing.B) {
	defer EnableMemo(true)
	EnableMemo(false)
	for _, n := range benchSizes {
		f := benchConcave(n)
		g := ShiftRight(benchConcave(n), 0.5)
		b.Run(fmt.Sprintf("segs-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				combineSorted(f, g, binMin)
			}
		})
	}
}

func BenchmarkConvolveConvex(b *testing.B) {
	defer EnableMemo(true)
	EnableMemo(false)
	for _, n := range benchSizes {
		f := benchConvex(n)
		g := ShiftRight(benchConvex(n), 0.5)
		b.Run(fmt.Sprintf("segs-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Convolve(f, g)
			}
		})
	}
}

func BenchmarkDeconvolve(b *testing.B) {
	defer EnableMemo(true)
	EnableMemo(false)
	for _, n := range benchSizes {
		alpha := benchConcave(n)
		beta := RateLatency(alpha.UltimateSlope()+10, 2)
		b.Run(fmt.Sprintf("segs-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Deconvolve(alpha, beta)
			}
		})
	}
}

func BenchmarkMemoHit(b *testing.B) {
	EnableMemo(true)
	ResetMemo()
	f := benchConcave(100)
	g := ShiftRight(benchConcave(100), 0.5)
	Min(f, g) // warm the entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Min(f, g)
	}
}

func BenchmarkDigest(b *testing.B) {
	for _, n := range benchSizes {
		segs := benchConcave(n).Segments()
		b.Run(fmt.Sprintf("segs-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				digestCurve(0, segs)
			}
		})
	}
}
