package curve

import (
	"math"
	"math/rand"
	"testing"
)

func TestInverseRateLatency(t *testing.T) {
	b := RateLatency(4, 3)
	inv, ok := b.Inverse()
	if !ok {
		t.Fatal("invertible")
	}
	// Delivery time of volume v: T + v/R.
	for _, v := range []float64{0.5, 1, 4, 10} {
		want := 3 + v/4
		if got := inv.Value(v); math.Abs(got-want) > 1e-9 {
			t.Errorf("inv(%v) = %v, want %v", v, got, want)
		}
	}
	// Volume 0 is "delivered" immediately after the latency in the inf
	// sense: inv(0) = T (the first instant any volume could appear)...
	// by right-continuity our representation reports inv(0+) = 3.
	if got := inv.ValueRight(0); math.Abs(got-3) > 1e-9 {
		t.Errorf("inv(0+) = %v", got)
	}
}

func TestInverseLeakyBucket(t *testing.T) {
	a := Affine(2, 5)
	inv, ok := a.Inverse()
	if !ok {
		t.Fatal("invertible")
	}
	// Volumes within the burst are available at t=0; beyond, (v-b)/r.
	if got := inv.Value(3); got != 0 {
		t.Errorf("inv(3) = %v, want 0", got)
	}
	for _, v := range []float64{6, 9, 15} {
		want := (v - 5) / 2
		if got := inv.Value(v); math.Abs(got-want) > 1e-9 {
			t.Errorf("inv(%v) = %v, want %v", v, got, want)
		}
	}
}

func TestInverseStepAndZero(t *testing.T) {
	s := Step(10, 4)
	inv, ok := s.Inverse()
	if !ok {
		t.Fatal("invertible")
	}
	if got := inv.Value(5); math.Abs(got-4) > 1e-9 {
		t.Errorf("inv(5) = %v, want 4", got)
	}
	if !s.Bounded() {
		t.Error("step is bounded")
	}
	if _, ok := Zero().Inverse(); ok {
		t.Error("zero curve must not invert")
	}
	if Zero().Bounded() != true {
		t.Error("zero curve is bounded")
	}
	if RateLatency(1, 1).Bounded() {
		t.Error("rate-latency is unbounded")
	}
}

// Property: Inverse agrees with InverseLower pointwise.
func TestInverseMatchesInverseLower(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for k := 0; k < 25; k++ {
		var c Curve
		if k%2 == 0 {
			c = Min(Affine(0.5+3*rng.Float64(), 8*rng.Float64()), Affine(0.2+rng.Float64(), 2+8*rng.Float64()))
		} else {
			c = RateLatency(0.5+4*rng.Float64(), 3*rng.Float64())
		}
		inv, ok := c.Inverse()
		if !ok {
			t.Fatal("invertible")
		}
		for i := 1; i <= 200; i++ {
			y := 30 * float64(i) / 200
			want := c.InverseLower(y)
			got := inv.Value(y)
			// The curve representation is right-continuous; compare against
			// both one-sided limits of the pointwise pseudo-inverse.
			if math.Abs(got-want) > 1e-6*(1+want) && math.Abs(inv.ValueLeft(y)-want) > 1e-6*(1+want) {
				t.Fatalf("inv(%g) = %g, InverseLower = %g (curve %v)", y, got, want, c)
			}
		}
	}
}

// Property: double inversion recovers strictly increasing curves.
func TestInverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for k := 0; k < 20; k++ {
		// Strictly increasing continuous concave curve: min of two affine
		// curves with zero burst on the first.
		c := Min(Affine(1+3*rng.Float64(), 0), Affine(0.3+rng.Float64(), 1+5*rng.Float64()))
		inv, ok := c.Inverse()
		if !ok {
			t.Fatal("invertible")
		}
		back, ok := inv.Inverse()
		if !ok {
			t.Fatal("invertible twice")
		}
		for i := 1; i <= 100; i++ {
			x := 20 * float64(i) / 100
			if math.Abs(back.Value(x)-c.Value(x)) > 1e-6*(1+c.Value(x)) {
				t.Fatalf("involution failed at %g: %g vs %g", x, back.Value(x), c.Value(x))
			}
		}
	}
}

// The delay bound can be computed through the inverse: d = sup_t
// [beta^{-1}(alpha(t)) - t], matching HDev.
func TestInverseDelayBound(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for k := 0; k < 20; k++ {
		r := 0.5 + 2*rng.Float64()
		alpha := Affine(r, 5*rng.Float64())
		beta := RateLatency(r+0.5+2*rng.Float64(), 3*rng.Float64())
		inv, ok := beta.Inverse()
		if !ok {
			t.Fatal("invertible")
		}
		want := HDev(alpha, beta)
		sup := 0.0
		for i := 0; i <= 2000; i++ {
			x := 40 * float64(i) / 2000
			if d := inv.Value(alpha.Value(x)) - x; d > sup {
				sup = d
			}
		}
		if math.Abs(sup-want) > 0.05*(1+want) {
			t.Fatalf("inverse-based delay %g vs HDev %g", sup, want)
		}
	}
}
