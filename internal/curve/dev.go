package curve

import (
	"math"
)

// InverseLower returns the lower pseudo-inverse
//
//	f⁻¹(y) = inf { t >= 0 : f(t) >= y },
//
// i.e. the first time the curve reaches level y. It returns +inf when the
// curve never reaches y and 0 for y <= f(0+) (the infimum when the jump at
// the origin already covers y).
func (c Curve) InverseLower(y float64) float64 {
	if y <= c.y0 || y <= c.segs[0].Y {
		return 0
	}
	for i, s := range c.segs {
		if s.Y >= y {
			// The (upward) jump at s.X reaches y.
			return s.X
		}
		end := math.Inf(1)
		if i+1 < len(c.segs) {
			end = c.segs[i+1].X
		}
		if s.Slope > 0 {
			t := s.X + (y-s.Y)/s.Slope
			if t < end {
				return t
			}
		}
	}
	return math.Inf(1)
}

// VDev returns the vertical deviation
//
//	v(f, g) = sup_{t >= 0} [ f(t) - g(t) ],
//
// the network-calculus backlog bound when f is an arrival curve and g a
// service curve. It returns +inf when f's long-run rate exceeds g's.
func VDev(f, g Curve) float64 {
	return memoScalar(opVDev, f, g, func() float64 { return vDev(f, g) })
}

func vDev(f, g Curve) float64 {
	fr, fo := f.UltimateAffine()
	gr, gOff := g.UltimateAffine()
	if fr > gr+absEps(gr) {
		return math.Inf(1)
	}
	sup := f.AtZero() - g.AtZero()
	consider := func(v float64) {
		if v > sup {
			sup = v
		}
	}
	for _, x := range mergeBreakpoints(f.Breakpoints(), g.Breakpoints()) {
		consider(f.Value(x) - g.Value(x))
		consider(f.ValueLeft(x) - g.ValueLeft(x))
		consider(f.ValueRight(x) - g.ValueRight(x))
	}
	if math.Abs(fr-gr) <= absEps(gr) {
		consider(fo - gOff) // asymptotic gap for equal long-run rates
	}
	return sup
}

// HDev returns the horizontal deviation
//
//	h(f, g) = sup_{t >= 0} inf { d >= 0 : f(t) <= g(t+d) },
//
// the network-calculus virtual-delay bound when f is an arrival curve and g
// a service curve. It returns +inf when f's long-run rate exceeds g's, or
// when f exceeds a bounded g.
func HDev(f, g Curve) float64 {
	return memoScalar(opHDev, f, g, func() float64 { return hDev(f, g) })
}

func hDev(f, g Curve) float64 {
	return hDevOn(f, g, f.Breakpoints(), g.Breakpoints())
}

// hDevOn is the hDev kernel with the breakpoint abscissas supplied by the
// caller: fbp and gbp must equal f.Breakpoints() and g.Breakpoints(). The
// split lets Scratch.HDev reuse per-worker buffers while running the exact
// same candidate evaluation, so its results are bitwise identical to HDev's.
func hDevOn(f, g Curve, fbp, gbp []float64) float64 {
	fr, fo := f.UltimateAffine()
	gr, gOff := g.UltimateAffine()
	if fr > gr+absEps(gr) {
		return math.Inf(1)
	}
	sup := 0.0
	unbounded := false
	consider := func(t, y float64) {
		ti := g.InverseLower(y)
		if math.IsInf(ti, 1) {
			unbounded = true
			return
		}
		if d := ti - t; d > sup {
			sup = d
		}
	}
	// Candidate t values: all f breakpoints (both one-sided values), plus
	// the pre-images under f of g's breakpoint levels.
	for _, x := range fbp {
		consider(x, f.Value(x))
		consider(x, f.ValueLeft(x))
		consider(x, f.ValueRight(x)) // catches the jump at the origin
	}
	consider(0, f.AtZero())
	for _, u := range gbp {
		for _, y := range []float64{g.Value(u), g.ValueLeft(u)} {
			t := f.InverseLower(y)
			if math.IsInf(t, 1) {
				continue
			}
			consider(t, y)
			consider(t, f.Value(t))
			consider(t, f.ValueLeft(t))
			consider(t, f.ValueRight(t))
		}
	}
	if math.Abs(fr-gr) <= absEps(gr) && gr > 0 {
		// Asymptotic horizontal gap for equal long-run rates.
		if d := (fo - gOff) / gr; d > sup {
			sup = d
		}
	}
	if unbounded {
		return math.Inf(1)
	}
	return sup
}
