package curve

import (
	"math"
	"math/rand"
	"testing"
)

func TestDeconvolveLeakyBucketRateLatency(t *testing.T) {
	// Classic output bound: gamma_{r,b} deconv beta_{R,T} = gamma_{r, b+rT}
	// when r <= R.
	a := Affine(2, 5)
	b := RateLatency(4, 3)
	got, ok := Deconvolve(a, b)
	if !ok {
		t.Fatal("expected bounded deconvolution")
	}
	want := Affine(2, 5+2*3)
	if !got.ZeroAtOrigin().Equal(want) {
		t.Errorf("deconv = %v, want %v", got, want)
	}
	// The raw value at 0 is the vertical deviation sup(f-g) = b + rT.
	approx(t, got.AtZero(), 11, 1e-9, "deconv at origin")
}

func TestDeconvolveUnbounded(t *testing.T) {
	a := Affine(5, 1)
	b := RateLatency(4, 0) // service rate below arrival rate
	if _, ok := Deconvolve(a, b); ok {
		t.Error("expected unbounded deconvolution")
	}
}

func TestDeconvolveEqualRates(t *testing.T) {
	a := Affine(4, 5)
	b := RateLatency(4, 3)
	got, ok := Deconvolve(a, b)
	if !ok {
		t.Fatal("equal rates are still bounded")
	}
	want := Affine(4, 5+4*3)
	if !got.ZeroAtOrigin().Equal(want) {
		t.Errorf("deconv = %v, want %v", got, want)
	}
}

func TestDeconvolveIdentityAgainstZeroLatency(t *testing.T) {
	// deconv against an infinitely fast server beta = line(R), R >= r:
	// alpha deconv lambda_R = alpha when alpha is leaky bucket with r <= R.
	a := Affine(2, 5)
	b := Line(100)
	got, ok := Deconvolve(a, b)
	if !ok {
		t.Fatal("bounded")
	}
	if !got.ZeroAtOrigin().Equal(a) {
		t.Errorf("deconv vs fast line = %v, want %v", got, a)
	}
}

// checkDeconvBrute verifies got(t) >= and ~= sup_u f(t+u)-g(u) on a grid.
func checkDeconvBrute(t *testing.T, f, g, got Curve, horizon, uMax float64) {
	t.Helper()
	const n = 300
	for i := 0; i <= n; i++ {
		x := horizon * float64(i) / float64(n)
		best := f.Value(x) - g.AtZero()
		for j := 0; j <= n; j++ {
			u := uMax * float64(j) / float64(n)
			if v := f.Value(x+u) - g.Value(u); v > best {
				best = v
			}
			if v := f.Value(x+u) - g.ValueLeft(u); v > best {
				best = v
			}
		}
		gv := got.Value(x)
		// Exact result must dominate every sampled witness and not exceed
		// the sampled sup by more than grid slack.
		if gv < best-1e-6*(1+math.Abs(best)) {
			t.Fatalf("deconv too low at t=%g: %g < %g", x, gv, best)
		}
		if gv > best+0.35 {
			t.Fatalf("deconv too high at t=%g: %g > %g", x, gv, best)
		}
	}
}

func TestDeconvolveMatchesBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 20; k++ {
		r := 0.5 + 3*rng.Float64()
		R := r + 0.5 + 3*rng.Float64()
		a := Affine(r, 10*rng.Float64())
		b := RateLatency(R, 4*rng.Float64())
		got, ok := Deconvolve(a, b)
		if !ok {
			t.Fatal("bounded case reported unbounded")
		}
		checkDeconvBrute(t, a, b, got, 12, 30)
	}
}

func TestDeconvolveMultiSegmentService(t *testing.T) {
	// Service: 0 until 1, slope 2 until 4, then slope 6 (convex).
	b := New(0, []Segment{{0, 0, 0}, {1, 0, 2}, {4, 6, 6}})
	a := Affine(1.5, 4)
	got, ok := Deconvolve(a, b)
	if !ok {
		t.Fatal("bounded")
	}
	checkDeconvBrute(t, a, b, got, 12, 30)
}

func TestDeconvolveConcaveArrivalTwoBuckets(t *testing.T) {
	// Arrival constrained by two leaky buckets (concave, 2 segments).
	a := Min(Affine(5, 1), Affine(1, 9))
	b := RateLatency(6, 2)
	got, ok := Deconvolve(a, b)
	if !ok {
		t.Fatal("bounded")
	}
	checkDeconvBrute(t, a, b, got, 12, 30)
}

func TestDeconvolveVsSampledHelper(t *testing.T) {
	a := Affine(2, 5)
	b := RateLatency(4, 3)
	exact, _ := Deconvolve(a, b)
	xs, ys := DeconvolveSampled(a, b, 10, 30, 200)
	for i := range xs {
		if ev := exact.Value(xs[i]); ev < ys[i]-1e-6 {
			t.Fatalf("exact below sampled at %g: %g < %g", xs[i], ev, ys[i])
		}
	}
}

// Output-bound semantics: deconvolution of the arrival against the service
// dominates the arrival itself (a server can only increase burstiness).
func TestDeconvolveDominatesArrival(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for k := 0; k < 20; k++ {
		r := 0.5 + 3*rng.Float64()
		a := Affine(r, 10*rng.Float64())
		b := RateLatency(r+1+3*rng.Float64(), 4*rng.Float64())
		out, ok := Deconvolve(a, b)
		if !ok {
			t.Fatal("bounded")
		}
		for _, x := range []float64{0.1, 0.5, 1, 3, 10, 40} {
			if out.Value(x) < a.Value(x)-1e-6 {
				t.Fatalf("output bound below arrival at %g", x)
			}
		}
	}
}

func TestHDevClosedForm(t *testing.T) {
	// d <= T + b/R for leaky bucket alpha and rate-latency beta.
	a := Affine(2, 5)
	b := RateLatency(4, 3)
	got := HDev(a, b)
	approx(t, got, 3+5.0/4.0, 1e-9, "hdev closed form")
}

func TestHDevUnbounded(t *testing.T) {
	if !math.IsInf(HDev(Affine(5, 1), RateLatency(4, 1)), 1) {
		t.Error("overloaded hdev must be +Inf")
	}
	// Bounded service curve that alpha exceeds.
	if !math.IsInf(HDev(Affine(1, 1), Constant(3)), 1) {
		t.Error("arrival exceeding bounded service must be +Inf")
	}
}

func TestHDevEqualRates(t *testing.T) {
	a := Affine(4, 5)
	b := RateLatency(4, 3)
	approx(t, HDev(a, b), 3+5.0/4.0, 1e-9, "hdev equal rates")
}

func TestHDevZeroWhenServiceDominates(t *testing.T) {
	a := Affine(1, 0)
	b := Line(5)
	approx(t, HDev(a, b), 0, 1e-12, "no delay")
}

func TestVDevClosedForm(t *testing.T) {
	// x <= b + R_alpha*T for leaky bucket and rate-latency.
	a := Affine(2, 5)
	b := RateLatency(4, 3)
	approx(t, VDev(a, b), 5+2*3, 1e-9, "vdev closed form")
}

func TestVDevUnbounded(t *testing.T) {
	if !math.IsInf(VDev(Affine(5, 0), Line(4)), 1) {
		t.Error("overloaded vdev must be +Inf")
	}
}

func TestVDevEqualRates(t *testing.T) {
	a := Affine(4, 5)
	b := RateLatency(4, 3)
	approx(t, VDev(a, b), 5+4*3, 1e-9, "vdev equal rates")
}

// Brute-force cross-check of HDev/VDev on random curve pairs.
func TestDevMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for k := 0; k < 30; k++ {
		r := 0.5 + 3*rng.Float64()
		R := r + 0.2 + 3*rng.Float64()
		a := Min(Affine(r+2, rng.Float64()*3), Affine(r, 10*rng.Float64()))
		b := RateLatency(R, 4*rng.Float64())

		wantV := VDev(a, b)
		wantH := HDev(a, b)
		const n = 4000
		horizon := 40.0
		bruteV := a.AtZero() - b.AtZero()
		bruteH := 0.0
		for i := 0; i <= n; i++ {
			x := horizon * float64(i) / float64(n)
			if v := a.Value(x) - b.Value(x); v > bruteV {
				bruteV = v
			}
			d := b.InverseLower(a.Value(x)) - x
			if d > bruteH {
				bruteH = d
			}
		}
		if wantV < bruteV-1e-6 || wantV > bruteV+0.2 {
			t.Fatalf("vdev %g vs brute %g (a=%v b=%v)", wantV, bruteV, a, b)
		}
		if wantH < bruteH-1e-6 || wantH > bruteH+0.2 {
			t.Fatalf("hdev %g vs brute %g (a=%v b=%v)", wantH, bruteH, a, b)
		}
	}
}
