package curve

import (
	"math"
	"math/rand"
	"testing"
)

// This file is the differential harness for the O(n+m) merge kernels: the
// two-pointer combineMerge must be pointwise identical (on a dense grid) to
// the retained sort-based reference combineSorted on randomized curve
// pairs, and structurally equal curves must produce equal digests.

// randCurve builds a random valid wide-sense-increasing piecewise-linear
// curve with up to maxSegs segments, optional origin value, optional upward
// jumps, and slopes drawn around the given magnitude so the harness also
// exercises large-scale (GB/s-like) values.
func randCurve(rng *rand.Rand, maxSegs int, magnitude float64) Curve {
	n := 1 + rng.Intn(maxSegs)
	segs := make([]Segment, 0, n)
	x, y := 0.0, 0.0
	if rng.Intn(3) == 0 {
		y = magnitude * rng.Float64()
	}
	y0 := 0.0
	if rng.Intn(4) == 0 {
		y0 = y * rng.Float64()
	}
	for i := 0; i < n; i++ {
		slope := magnitude * rng.Float64() * 4
		if rng.Intn(5) == 0 {
			slope = 0
		}
		segs = append(segs, Segment{x, y, slope})
		dx := 0.1 + 3*rng.Float64()
		y += slope * dx
		if rng.Intn(4) == 0 {
			y += magnitude * rng.Float64() // upward jump
		}
		x += dx
	}
	return New(y0, segs)
}

// sameOnGrid asserts f and g agree pointwise on a dense grid over
// [0, horizon], with a tolerance relative to the local value.
func sameOnGrid(t *testing.T, f, g Curve, horizon float64, msg string) {
	t.Helper()
	for i := 0; i <= 400; i++ {
		x := horizon * float64(i) / 400
		fv, gv := f.Value(x), g.Value(x)
		if math.Abs(fv-gv) > 1e-6*(1+math.Abs(fv)+math.Abs(gv)) {
			t.Fatalf("%s: differ at %g: merge=%g sorted=%g", msg, x, fv, gv)
		}
	}
}

func TestKernelDifferentialRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ops := []struct {
		name string
		op   binOp
	}{{"min", binMin}, {"max", binMax}, {"add", binAdd}}
	for _, mag := range []float64{1, 1e6, 1e9} {
		for k := 0; k < 200; k++ {
			a := randCurve(rng, 8, mag)
			b := randCurve(rng, 8, mag)
			horizon := 1.5 * math.Max(a.LastBreak(), b.LastBreak())
			if horizon == 0 {
				horizon = 10
			}
			for _, tc := range ops {
				merged := combineMerge(a, b, tc.op)
				sorted := combineSorted(a, b, tc.op)
				sameOnGrid(t, merged, sorted, horizon, tc.name)
			}
		}
	}
}

// Equal curve values must yield equal digests: rebuilding a curve from its
// own normalized segments is the identity, digest included.
func TestDigestStability(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for k := 0; k < 200; k++ {
		c := randCurve(rng, 10, math.Pow(10, float64(rng.Intn(10))))
		r := New(c.AtZero(), c.Segments())
		if !r.Equal(c) {
			t.Fatalf("rebuild not equal: %v vs %v", r, c)
		}
		if r.Digest() != c.Digest() {
			t.Fatalf("rebuild digest differs: %x vs %x for %v", r.Digest(), c.Digest(), c)
		}
	}
	// Distinct curves should (overwhelmingly) get distinct digests.
	seen := map[uint64]Curve{}
	for k := 0; k < 500; k++ {
		c := Affine(1+float64(k)/7, float64(k%13))
		if prev, dup := seen[c.Digest()]; dup && !prev.Equal(c) {
			t.Fatalf("digest collision between %v and %v", prev, c)
		}
		seen[c.Digest()] = c
	}
}

// The kernels must agree with the reference on curves that share
// breakpoints and on exactly-coincident curves (tie-handling paths).
func TestKernelDifferentialTies(t *testing.T) {
	a := New(0, []Segment{{0, 0, 2}, {1, 2, 1}, {3, 4, 5}})
	cases := []struct {
		name string
		b    Curve
	}{
		{"identical", New(0, []Segment{{0, 0, 2}, {1, 2, 1}, {3, 4, 5}})},
		{"shared breakpoints", New(0, []Segment{{0, 1, 1}, {1, 2, 3}, {3, 8, 2}})},
		{"crossing on final ray", Affine(1, 3)},
		{"touching then diverging", New(0, []Segment{{0, 0, 2}, {1, 2, 4}})},
		{"constant", Constant(3)},
		{"zero", Zero()},
	}
	for _, tc := range cases {
		for _, op := range []binOp{binMin, binMax, binAdd} {
			merged := combineMerge(a, tc.b, op)
			sorted := combineSorted(a, tc.b, op)
			sameOnGrid(t, merged, sorted, 12, tc.name)
		}
	}
}

// Envelope must match the Min-fold of the same buckets.
func TestEnvelopeMatchesMinFold(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for k := 0; k < 100; k++ {
		n := 1 + rng.Intn(6)
		buckets := make([]Bucket, n)
		var fold Curve
		for i := range buckets {
			buckets[i] = Bucket{Rate: 0.5 + 10*rng.Float64(), Burst: 20 * rng.Float64()}
			line := Affine(buckets[i].Rate, buckets[i].Burst)
			if i == 0 {
				fold = line
			} else {
				fold = Min(fold, line)
			}
		}
		env := Envelope(buckets)
		// Pointwise identity; digests may differ by crossing-abscissa ulps
		// because the fold computes intersections pairwise.
		sameOnGrid(t, env, fold, 40, "envelope vs min-fold")
		if env.UltimateSlope() != fold.UltimateSlope() {
			t.Fatalf("envelope ultimate slope %g != fold %g for %v",
				env.UltimateSlope(), fold.UltimateSlope(), buckets)
		}
	}
}

// The memo must be semantically invisible: with it disabled, operations
// must produce the same curves as with it enabled.
func TestMemoTransparency(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	defer EnableMemo(true)
	for k := 0; k < 50; k++ {
		a := randCurve(rng, 6, 1e3)
		b := randCurve(rng, 6, 1e3)
		EnableMemo(true)
		m1 := Min(a, b)
		c1 := Convolve(a, b)
		EnableMemo(false)
		m2 := Min(a, b)
		c2 := Convolve(a, b)
		if !m1.Equal(m2) || m1.Digest() != m2.Digest() {
			t.Fatalf("memoized Min differs: %v vs %v", m1, m2)
		}
		if !c1.Equal(c2) || c1.Digest() != c2.Digest() {
			t.Fatalf("memoized Convolve differs: %v vs %v", c1, c2)
		}
	}
}
