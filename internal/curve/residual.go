package curve

import "math"

// ResidualService returns the left-over (residual) service curve available
// to a flow of interest when cross traffic bounded by cross shares a server
// with service curve beta under blind (arbitrary-order) multiplexing:
//
//	beta_residual(t) = [beta(t) - cross(t)]⁺.
//
// ok is false when the cross traffic's long-run rate is at least beta's
// (the flow of interest can starve). For the canonical shapes — beta
// rate-latency (R, T), cross leaky-bucket (r, b) — this reduces to the
// textbook rate-latency (R-r, (b+RT)/(R-r)).
//
// beta must be convex (the usual rate-latency family). A non-concave cross
// envelope — a packet staircase, a composite of heterogeneous flows — is
// first replaced by its least concave majorant (ConcaveHull): a valid, if
// looser, envelope for the same traffic, so the subtraction still
// lower-bounds the residual. Rejecting such crosses outright used to
// report spurious starvation for perfectly admissible flows.
func ResidualService(beta, cross Curve) (res Curve, ok bool) {
	return memoBinaryOK(opResidual, beta, cross, func() (Curve, bool) { return residualService(beta, cross) })
}

func residualService(beta, cross Curve) (res Curve, ok bool) {
	if !beta.IsConvex() {
		return Zero(), false
	}
	if !cross.IsConcave() {
		cross = ConcaveHull(cross)
	}
	br, _ := beta.UltimateAffine()
	cr, _ := cross.UltimateAffine()
	if br <= cr+absEps(cr) {
		return Zero(), false
	}
	// diff(t) = beta(t) - cross(t) evaluated on the merged breakpoints; the
	// difference is convex, so it has a single sign change from <= 0 to > 0.
	// Locate the crossing and emit the increasing positive tail.
	xs := mergeBreakpoints(beta.Breakpoints(), cross.Breakpoints())
	diffAt := func(t float64) float64 { return beta.Value(t) - cross.Value(t) }

	// Find the first merged breakpoint (or final-ray point) with diff > 0.
	idx := -1
	for i, x := range xs {
		if diffAt(x) > 0 {
			idx = i
			break
		}
	}
	var t0 float64 // crossing abscissa
	switch {
	case idx == 0:
		t0 = 0
	case idx > 0:
		// Crossing inside (xs[idx-1], xs[idx]]: both curves affine there.
		lo, hi := xs[idx-1], xs[idx]
		mid := (lo + hi) / 2
		sb, sc := beta.segAt(mid), cross.segAt(mid)
		slope := sb.Slope - sc.Slope
		v := diffAt(hi)
		if slope > 0 {
			t0 = hi - v/slope
			if t0 < lo {
				t0 = lo
			}
		} else {
			t0 = hi
		}
	default:
		// Positive only on the final ray.
		last := xs[len(xs)-1]
		v := diffAt(last)
		slope := br - cr
		t0 = last - v/slope // v <= 0, slope > 0 => t0 >= last
	}

	segs := []Segment{}
	if t0 > 0 {
		segs = append(segs, Segment{0, 0, 0})
	}
	// Slope just after the crossing.
	after := math.Nextafter(t0, math.Inf(1))
	slopeAt := func(t float64) float64 {
		return beta.segAt(t).Slope - cross.segAt(t).Slope
	}
	start := Segment{t0, math.Max(0, diffAt(t0)), math.Max(0, slopeAt(after))}
	if t0 == 0 {
		start.Y = math.Max(0, beta.Burst()-cross.Burst())
	}
	segs = append(segs, start)
	for _, x := range xs {
		if x <= t0 {
			continue
		}
		segs = append(segs, Segment{x, diffAt(x), math.Max(0, slopeAt(math.Nextafter(x, math.Inf(1))))})
	}
	y0 := math.Max(0, beta.AtZero()-cross.AtZero())
	return newOwned(y0, segs), true
}

// Shape returns the arrival bound of a flow constrained by alpha after it
// passes through a greedy shaper with (concave, zero-at-origin) shaping
// curve sigma: the shaped flow is constrained by alpha ⊗ sigma = min(alpha,
// sigma) for the common concave case. Shapers implement the back-pressure
// throttling of the paper's future work: re-shaping an overloaded arrival
// down to a sustainable envelope.
func Shape(alpha, sigma Curve) Curve {
	return Convolve(alpha, sigma)
}

// SubAdditiveClosure returns the sub-additive closure
//
//	f* = min(delta_0, f, f ⊗ f, f ⊗ f ⊗ f, ...)
//
// restricted to curves with f(0) = 0 (otherwise the closure degenerates).
// For concave f with f(0) = 0 the closure is f itself (already
// sub-additive); for general piecewise-linear curves the self-convolutions
// are folded until a fixpoint (compared via Equal) or maxIter iterations.
func SubAdditiveClosure(f Curve, maxIter int) Curve {
	if f.AtZero() != 0 {
		panic("curve: SubAdditiveClosure requires f(0) = 0")
	}
	if f.IsConcave() {
		return f
	}
	if maxIter < 1 {
		maxIter = 8
	}
	closure := f
	power := f
	for i := 0; i < maxIter; i++ {
		power = Convolve(power, f)
		next := Min(closure, power)
		if next.Equal(closure) {
			return closure
		}
		closure = next
	}
	return closure
}

// IsSubAdditive reports whether f(s+t) <= f(s) + f(t) holds on a sample
// grid over [0, horizon] (a practical check; exactness would require
// comparing f with its closure).
func IsSubAdditive(f Curve, horizon float64, n int) bool {
	if n < 2 {
		n = 2
	}
	for i := 0; i <= n; i++ {
		s := horizon * float64(i) / float64(n)
		for j := 0; j <= n-i; j++ {
			t := horizon * float64(j) / float64(n)
			if f.Value(s+t) > f.Value(s)+f.Value(t)+1e-6*(1+f.Value(s+t)) {
				return false
			}
		}
	}
	return true
}
