package curve

import (
	"sync"
	"sync/atomic"
)

// Operation memo.
//
// Because curves are immutable and hash-consed, an operator result is fully
// determined by (op, digest(a), digest(b)) — or (op, digest(a), scalar bits)
// for the unary-with-scalar transforms. The memo exploits that: repeated
// sub-expressions across an analysis run (and across admission probes, which
// re-fold the same platform service curves for every candidate and victim)
// are computed once and shared.
//
// Shared results are safe because Curve is immutable after construction:
// every accessor that exposes segments copies, so a memoized Curve can be
// handed to any number of goroutines.
//
// The memo is bounded and sharded: memoShardCount shards, each holding at
// most memoShardCap entries under its own mutex. On overflow a shard evicts
// roughly half its entries at random (map iteration order), which is cheap,
// keeps the hot working set with high probability, and needs no LRU
// bookkeeping on the hit path.

type memoOp uint8

const (
	opMin memoOp = iota + 1
	opMax
	opAdd
	opConv
	opDeconv
	opResidual
	opHDev
	opVDev
	opShiftRight
	opAddBurst
	opSubConst
	opConcaveHull
	opFIFOResidual
)

// commutative reports whether the op's operands may be swapped, letting the
// memo canonicalize the key order and share entries across argument order.
func (op memoOp) commutative() bool {
	switch op {
	case opMin, opMax, opAdd, opConv:
		return true
	}
	return false
}

type memoKey struct {
	op     memoOp
	da, db uint64
}

// memoVal holds either a curve result, a scalar result, or a (curve, ok)
// pair, depending on the op.
type memoVal struct {
	c      Curve
	scalar float64
	ok     bool
}

const (
	memoShardCount = 16 // power of two
	memoShardCap   = 4096
)

type memoShard struct {
	mu sync.Mutex
	m  map[memoKey]memoVal
}

var (
	memoShards  [memoShardCount]memoShard
	memoEnabled atomic.Bool
	memoHits    atomic.Uint64
	memoMisses  atomic.Uint64
)

func init() { memoEnabled.Store(true) }

func (k memoKey) shard() *memoShard {
	// Digests are already avalanche-mixed; fold both plus the op tag.
	h := k.da ^ (k.db * 0x9e3779b97f4a7c15) ^ uint64(k.op)
	return &memoShards[h&(memoShardCount-1)]
}

func memoLoad(k memoKey) (memoVal, bool) {
	s := k.shard()
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		memoHits.Add(1)
	} else {
		memoMisses.Add(1)
	}
	return v, ok
}

func memoStore(k memoKey, v memoVal) {
	s := k.shard()
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[memoKey]memoVal, 64)
	}
	if len(s.m) >= memoShardCap {
		// Evict about half the shard; map iteration order is effectively
		// random, so this approximates random replacement.
		drop := len(s.m) / 2
		for key := range s.m {
			if drop == 0 {
				break
			}
			delete(s.m, key)
			drop--
		}
	}
	s.m[k] = v
	s.mu.Unlock()
}

// memoBinary caches a Curve-valued binary op keyed on both digests.
// Computed (non-hit) operations report their duration to the attached
// OpTimer, if any (see instr.go).
func memoBinary(op memoOp, a, b Curve, compute func() Curve) Curve {
	if !memoEnabled.Load() {
		return timedCurve(op, compute)
	}
	k := memoKey{op, a.digest, b.digest}
	if op.commutative() && k.db < k.da {
		k.da, k.db = k.db, k.da
	}
	if v, ok := memoLoad(k); ok {
		return v.c
	}
	c := timedCurve(op, compute)
	memoStore(k, memoVal{c: c})
	return c
}

// memoBinaryOK caches a (Curve, bool)-valued binary op.
func memoBinaryOK(op memoOp, a, b Curve, compute func() (Curve, bool)) (Curve, bool) {
	if !memoEnabled.Load() {
		return timedCurveOK(op, compute)
	}
	k := memoKey{op, a.digest, b.digest}
	if v, ok := memoLoad(k); ok {
		return v.c, v.ok
	}
	c, ok := timedCurveOK(op, compute)
	memoStore(k, memoVal{c: c, ok: ok})
	return c, ok
}

// memoScalar caches a float64-valued binary op (HDev, VDev).
func memoScalar(op memoOp, a, b Curve, compute func() float64) float64 {
	if !memoEnabled.Load() {
		return timedScalar(op, compute)
	}
	k := memoKey{op, a.digest, b.digest}
	if v, ok := memoLoad(k); ok {
		return v.scalar
	}
	s := timedScalar(op, compute)
	memoStore(k, memoVal{scalar: s})
	return s
}

// memoUnary caches a Curve-valued unary op with one scalar parameter,
// keyed on (digest, scalar bits).
func memoUnary(op memoOp, a Curve, scalar float64, compute func() Curve) Curve {
	if !memoEnabled.Load() {
		return timedCurve(op, compute)
	}
	k := memoKey{op, a.digest, fbits(scalar)}
	if v, ok := memoLoad(k); ok {
		return v.c
	}
	c := timedCurve(op, compute)
	memoStore(k, memoVal{c: c})
	return c
}

// CacheStats is a snapshot of the operation memo counters.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookups.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// MemoStats reports the operation memo's cumulative hit/miss counters and
// current entry count.
func MemoStats() CacheStats {
	st := CacheStats{
		Hits:   memoHits.Load(),
		Misses: memoMisses.Load(),
	}
	for i := range memoShards {
		s := &memoShards[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	return st
}

// ResetMemo drops all memoized results and zeroes the counters. Mainly for
// tests and benchmarks that need cold-cache numbers.
func ResetMemo() {
	for i := range memoShards {
		s := &memoShards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
	memoHits.Store(0)
	memoMisses.Store(0)
}

// EnableMemo toggles operation memoization and returns the previous setting.
// Disabling does not drop existing entries; use ResetMemo for that.
func EnableMemo(on bool) bool {
	prev := memoEnabled.Load()
	memoEnabled.Store(on)
	return prev
}
