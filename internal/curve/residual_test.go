package curve

import (
	"math"
	"math/rand"
	"testing"
)

func TestResidualServiceTextbook(t *testing.T) {
	// beta = RL(R=10, T=2), cross = LB(r=3, b=4):
	// residual = RL(R-r=7, (b+RT)/(R-r) = (4+20)/7).
	beta := RateLatency(10, 2)
	cross := Affine(3, 4)
	got, ok := ResidualService(beta, cross)
	if !ok {
		t.Fatal("expected residual service")
	}
	want := RateLatency(7, 24.0/7.0)
	if !got.Equal(want) {
		t.Errorf("residual = %v, want %v", got, want)
	}
}

func TestResidualServiceStarved(t *testing.T) {
	if _, ok := ResidualService(RateLatency(3, 1), Affine(3, 0)); ok {
		t.Error("cross rate == service rate must starve")
	}
	if _, ok := ResidualService(RateLatency(3, 1), Affine(5, 0)); ok {
		t.Error("cross rate above service rate must starve")
	}
}

func TestResidualServiceZeroBurstCross(t *testing.T) {
	// A burstless cross flow only steals rate: residual latency is the
	// original work R*T respread over the leftover rate, RT/(R-r).
	got, ok := ResidualService(RateLatency(10, 2), Affine(4, 0))
	if !ok {
		t.Fatal("expected residual service")
	}
	want := RateLatency(6, 20.0/6.0)
	if !got.Equal(want) {
		t.Errorf("residual = %v, want %v", got, want)
	}

	// Degenerate: no cross at all is the identity.
	got, ok = ResidualService(RateLatency(10, 2), Affine(0, 0))
	if !ok {
		t.Fatal("expected residual service")
	}
	if !got.Equal(RateLatency(10, 2)) {
		t.Errorf("residual under zero cross = %v, want the original", got)
	}
}

// Repeated subtraction is associative: subtracting cross flows one at a time
// — in any order — lands on the same curve as subtracting their sum at once,
// [[beta-c1]⁺-c2]⁺ = [beta-(c1+c2)]⁺. (Exact for non-negative cross curves:
// wherever the two sides differ the inner positive part is clamping at zero,
// and subtracting more keeps both at zero.) This is what lets an admission
// controller release flows in any order without replaying history.
func TestResidualServiceAssociative(t *testing.T) {
	beta := RateLatency(10, 2)
	c1 := Affine(3, 4)
	c2 := Affine(2, 7)

	oneShot, ok := ResidualService(beta, Add(c1, c2))
	if !ok {
		t.Fatal("combined cross must not starve")
	}
	step12, ok := ResidualService(beta, c1)
	if !ok {
		t.Fatal("c1 must not starve")
	}
	step12, ok = ResidualService(step12, c2)
	if !ok {
		t.Fatal("c1 then c2 must not starve")
	}
	step21, ok := ResidualService(beta, c2)
	if !ok {
		t.Fatal("c2 must not starve")
	}
	step21, ok = ResidualService(step21, c1)
	if !ok {
		t.Fatal("c2 then c1 must not starve")
	}

	if !step12.Equal(oneShot) {
		t.Errorf("sequential (c1,c2) = %v, one-shot = %v", step12, oneShot)
	}
	if !step21.Equal(step12) {
		t.Errorf("release order matters: (c2,c1) = %v, (c1,c2) = %v", step21, step12)
	}
}

func TestResidualServiceShapeRequirements(t *testing.T) {
	// Non-convex beta is rejected.
	if _, ok := ResidualService(Affine(5, 2), Affine(1, 1)); ok {
		t.Error("concave beta must be rejected")
	}
	// A non-concave cross is concavified (least concave majorant) rather
	// than rejected: RateLatency(1, 2)'s hull is the line t (the flattest
	// concave curve keeping the ultimate rate), so the residual is that of
	// a slope-1 fluid cross flow.
	res, ok := ResidualService(RateLatency(5, 1), RateLatency(1, 2))
	if !ok {
		t.Fatal("convex cross must be concavified, not rejected")
	}
	if want, _ := ResidualService(RateLatency(5, 1), Line(1)); !res.Equal(want) {
		t.Errorf("residual = %v, want %v", res, want)
	}
}

// Brute-force check: residual(t) == max(0, beta(t)-cross(t)) pointwise.
func TestResidualServiceMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for k := 0; k < 30; k++ {
		R := 2 + 8*rng.Float64()
		r := rng.Float64() * (R - 0.5)
		beta := RateLatency(R, 4*rng.Float64())
		cross := Min(Affine(r, 10*rng.Float64()), Affine(r+3, rng.Float64()))
		got, ok := ResidualService(beta, cross)
		if !ok {
			t.Fatalf("unexpected starvation R=%v cross=%v", R, cross)
		}
		for i := 0; i <= 400; i++ {
			x := 20 * float64(i) / 400
			want := math.Max(0, beta.Value(x)-cross.Value(x))
			if math.Abs(got.Value(x)-want) > 1e-6*(1+want) {
				t.Fatalf("residual(%g) = %g, want %g (beta=%v cross=%v)",
					x, got.Value(x), want, beta, cross)
			}
		}
	}
}

// End-to-end multi-flow property: the per-flow delay bound computed from
// the residual service dominates the single-flow bound.
func TestResidualDelayDominatesSingleFlow(t *testing.T) {
	beta := RateLatency(10, 1)
	flow := Affine(2, 3)
	cross := Affine(4, 2)
	resid, ok := ResidualService(beta, cross)
	if !ok {
		t.Fatal("residual expected")
	}
	dAlone := HDev(flow, beta)
	dShared := HDev(flow, resid)
	if dShared < dAlone {
		t.Errorf("shared delay %v below exclusive delay %v", dShared, dAlone)
	}
}

func TestShapeConcave(t *testing.T) {
	alpha := Affine(5, 10)
	sigma := Affine(3, 2)
	got := Shape(alpha, sigma)
	want := Min(alpha, sigma)
	if !got.Equal(want) {
		t.Errorf("shaped = %v, want %v", got, want)
	}
	// A shaper re-establishes stability: shaped rate <= sigma's rate.
	if got.UltimateSlope() > 3+1e-12 {
		t.Error("shaper must clamp the long-run rate")
	}
}

func TestSubAdditiveClosureConcave(t *testing.T) {
	f := Affine(2, 5)
	if !SubAdditiveClosure(f, 8).Equal(f) {
		t.Error("concave curves are already sub-additive")
	}
}

func TestSubAdditiveClosureConvex(t *testing.T) {
	// A rate-latency curve is NOT sub-additive; its closure converges to
	// something below it (f(s+t) <= f*(s)+f*(t)).
	f := RateLatency(4, 3)
	cl := SubAdditiveClosure(f, 12)
	for i := 0; i <= 100; i++ {
		x := 20 * float64(i) / 100
		if cl.Value(x) > f.Value(x)+1e-9 {
			t.Fatalf("closure above original at %g", x)
		}
	}
	if !IsSubAdditive(cl, 10, 40) {
		t.Error("closure must be sub-additive on the sampled grid")
	}
	if IsSubAdditive(f, 10, 40) {
		t.Error("rate-latency with T>0 is not sub-additive")
	}
}

func TestSubAdditiveClosurePanicsOnPositiveOrigin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SubAdditiveClosure(Curve{y0: 1, segs: []Segment{{0, 1, 1}}}, 4)
}

func TestIsSubAdditiveBasics(t *testing.T) {
	if !IsSubAdditive(Affine(1, 2), 10, 20) {
		t.Error("leaky bucket is sub-additive")
	}
	if !IsSubAdditive(Zero(), 10, 2) {
		t.Error("zero curve is sub-additive")
	}
}
