// Package pool provides the bounded worker pool behind every parallel path
// in the repo: simulation replications (sim.ReplicateParallel), the
// experiments driver (experiments.RunParallel), parameter sweeps, and batch
// flow revalidation (admit.RevalidateAll). Work is an index space [0, n)
// dispatched to at most `workers` goroutines through a monotonic counter, so
// tasks start in index order — the property the callers rely on to make
// lowest-index error selection (and therefore the whole run) deterministic
// regardless of worker count.
//
// With a Metrics handle attached the pool streams onto an obs.Registry: a
// workers-busy gauge, a queue-wait histogram (submission to pick-up), a
// per-task duration histogram, and a completed-task counter. Detached
// (nil Metrics) the dispatch loop pays only nil checks.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamcalc/internal/obs"
)

// Metrics instruments a pool on an obs.Registry. All handles share a
// "pool" label so several pools can coexist on one registry.
type Metrics struct {
	busy      *obs.Gauge
	queueWait *obs.Histogram
	taskDur   *obs.Histogram
	done      *obs.Counter
}

// NewMetrics registers the pool metric family on reg under the given pool
// name. A nil registry returns a nil handle, which every pool entry point
// accepts as "detached".
func NewMetrics(reg *obs.Registry, name string) *Metrics {
	if reg == nil {
		return nil
	}
	l := obs.Label{Key: "pool", Value: name}
	return &Metrics{
		busy: reg.Gauge("nc_pool_workers_busy",
			"Workers currently executing a task.", l),
		queueWait: reg.Histogram("nc_pool_queue_wait_seconds",
			"Wall time from task submission to worker pick-up.",
			obs.ExponentialBuckets(1e-6, 4, 12), l),
		taskDur: reg.Histogram("nc_pool_task_duration_seconds",
			"Wall time each task spent executing.",
			obs.ExponentialBuckets(1e-5, 4, 12), l),
		done: reg.Counter("nc_pool_tasks_total",
			"Tasks completed (success or failure).", l),
	}
}

// Workers normalizes a worker-count knob: values < 1 mean GOMAXPROCS, and
// the count is capped at n (spawning more workers than tasks buys nothing).
func Workers(workers, n int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers` concurrent
// goroutines (< 1 means GOMAXPROCS). Indices are handed out in increasing
// order. On failure the pool stops handing out new indices, lets in-flight
// tasks finish, and returns the error of the lowest failing index — since
// every index below it was handed out earlier and ran to completion, the
// returned error is identical for any worker count. A canceled ctx (nil
// means context.Background) likewise stops dispatch; ctx.Err() is returned
// only when no task failed first.
func ForEach(ctx context.Context, workers, n int, m *Metrics, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers, n)

	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	submitted := time.Now()
	work := func() {
		defer wg.Done()
		for !stop.Load() && ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if m != nil {
				m.queueWait.Observe(time.Since(submitted).Seconds())
				m.busy.Add(1)
			}
			start := time.Now()
			err := fn(i)
			if m != nil {
				m.busy.Add(-1)
				m.taskDur.Observe(time.Since(start).Seconds())
				m.done.Inc()
			}
			if err != nil {
				mu.Lock()
				if i < firstIdx {
					firstIdx, firstErr = i, err
				}
				mu.Unlock()
				stop.Store(true)
			}
		}
	}

	if workers == 1 {
		// Inline fast path: no goroutine, no scheduling jitter — exactly the
		// sequential loop the parallel form must reproduce bit-for-bit.
		wg.Add(1)
		work()
	} else {
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go work()
		}
		wg.Wait()
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
