package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streamcalc/internal/obs"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		seen := make([]atomic.Int32, n)
		err := ForEach(context.Background(), workers, n, nil, func(i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndDefaults(t *testing.T) {
	if err := ForEach(nil, 0, 0, nil, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := 0
	if err := ForEach(nil, -3, 1, nil, func(int) error { ran++; return nil }); err != nil || ran != 1 {
		t.Fatalf("err=%v ran=%d", err, ran)
	}
	if w := Workers(0, 1000); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 1000) = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Errorf("Workers(8, 3) = %d", w)
	}
}

// TestForEachLowestIndexError checks the determinism contract: the error of
// the lowest failing index wins at every worker count, even when a higher
// index fails earlier in wall time.
func TestForEachLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(context.Background(), workers, 20, nil, func(i int) error {
			switch i {
			case 5:
				time.Sleep(5 * time.Millisecond) // fails late in wall time
				return fmt.Errorf("task %d", i)
			case 11:
				return fmt.Errorf("task %d", i) // fails early in wall time
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "task 5") {
			t.Errorf("workers=%d: err = %v, want task 5", workers, err)
		}
	}
}

func TestForEachStopsAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(context.Background(), 1, 1000, nil, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got != 4 {
		t.Errorf("sequential pool ran %d tasks after error at index 3, want 4", got)
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 2, 10000, nil, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 10000 {
		t.Errorf("cancellation did not stop dispatch (ran %d)", got)
	}
}

func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg, "test")
	if err := ForEach(context.Background(), 4, 32, m, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.done.Value(); got != 32 {
		t.Errorf("tasks_total = %d, want 32", got)
	}
	if got := m.busy.Value(); got != 0 {
		t.Errorf("workers_busy = %g after drain, want 0", got)
	}
	if got := m.taskDur.Count(); got != 32 {
		t.Errorf("task duration observations = %d, want 32", got)
	}
	if got := m.queueWait.Count(); got != 32 {
		t.Errorf("queue wait observations = %d, want 32", got)
	}
	// NilMetrics is a valid detached handle.
	if nm := NewMetrics(nil, "x"); nm != nil {
		t.Error("NewMetrics(nil) must return nil")
	}
}
